//! Integration tests of the latency-aware message plane: every protocol
//! message travels as a virtual-time delivery event, so reconciliation
//! rings, floods and §5.2.2 lookups take genuine time — while the
//! default instantaneous mode keeps the seed semantics byte-identical.

use p2psim::churn::LifetimeDistribution;
use p2psim::network::MessageClass;
use p2psim::time::SimTime;
use summary_p2p::config::{DeliveryMode, SimConfig};
use summary_p2p::domain::DomainSim;
use summary_p2p::kernel::{LookupTarget, MultiDomainSim};
use summary_p2p::scenario::with_latency;

fn base(n: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n, 0.3);
    c.horizon = SimTime::from_hours(6);
    c.query_count = 40;
    c.records_per_peer = 10;
    c.seed = seed;
    c
}

/// A configuration with churn effectively frozen: nobody fails, session
/// lifetimes dwarf the horizon, downtimes are instant.
fn zero_churn(n: usize, seed: u64) -> SimConfig {
    let mut c = base(n, seed);
    c.failure_fraction = 0.0;
    c.lifetime = LifetimeDistribution::Exponential { mean_s: 1e9 };
    c.mean_downtime_s = 1.0;
    c
}

#[test]
fn same_seed_determinism_with_latency_enabled() {
    let cfg = with_latency(&base(150, 1), SimTime::from_millis(50));
    let a = MultiDomainSim::new(cfg, 25, LookupTarget::Total)
        .unwrap()
        .run();
    let b = MultiDomainSim::new(cfg, 25, LookupTarget::Total)
        .unwrap()
        .run();
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.push_messages, b.push_messages);
    assert_eq!(a.reconciliations, b.reconciliations);
    assert_eq!(a.peak_in_flight, b.peak_in_flight);
    assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    assert!((a.mean_messages - b.mean_messages).abs() < 1e-12);
    assert!((a.mean_time_to_answer_s - b.mean_time_to_answer_s).abs() < 1e-12);
}

#[test]
fn lookups_and_rings_complete_at_positive_virtual_offsets() {
    let cfg = with_latency(&base(150, 1), SimTime::from_millis(50));
    let report = MultiDomainSim::new(cfg, 25, LookupTarget::Total)
        .unwrap()
        .run();
    assert!(report.queries > 0);
    assert!(
        report.mean_time_to_answer_s > 0.0,
        "lookups must take virtual time"
    );
    assert!(
        report.peak_in_flight > 0,
        "messages were actually in flight"
    );
    assert!(report.reconciliations > 0, "rings ran over the plane");
    let token_latency = report
        .latency_by_class
        .iter()
        .find(|(c, _, _)| *c == MessageClass::Reconciliation)
        .expect("token hops were delivered");
    assert!(token_latency.1 > 0, "token deliveries counted");
    assert!(
        token_latency.2 > 0.0,
        "every token hop takes strictly positive virtual time"
    );
}

#[test]
fn higher_link_latency_raises_time_to_answer_not_lowers_zero_churn_recall() {
    // Monotonicity: with churn frozen, a 5 s hop network answers the
    // same queries as a 1 ms one (recall identical — summaries never go
    // stale), just later.
    let slow_hop = SimTime::from_millis(5000);
    let fast_hop = SimTime::from_millis(1);
    let fast = MultiDomainSim::new(
        with_latency(&zero_churn(150, 3), fast_hop),
        25,
        LookupTarget::Total,
    )
    .unwrap()
    .run();
    let slow = MultiDomainSim::new(
        with_latency(&zero_churn(150, 3), slow_hop),
        25,
        LookupTarget::Total,
    )
    .unwrap()
    .run();
    assert!(fast.queries > 0 && slow.queries > 0);
    assert!(
        slow.mean_time_to_answer_s > fast.mean_time_to_answer_s,
        "5 s hops ({}) must answer slower than 1 ms hops ({})",
        slow.mean_time_to_answer_s,
        fast.mean_time_to_answer_s
    );
    assert!(
        slow.mean_recall >= fast.mean_recall - 1e-12,
        "latency alone must not lose answers at zero churn: {} vs {}",
        slow.mean_recall,
        fast.mean_recall
    );
    assert!(
        fast.mean_recall > 0.999,
        "frozen summaries localize every match"
    );
}

#[test]
fn instantaneous_mode_is_the_unchanged_escape_hatch() {
    // The default config *is* instantaneous mode, and an instantaneous
    // dynamic run reports no in-flight traffic and zero time-to-answer
    // — the PR 1 semantics the figure pipelines rely on.
    let cfg = base(120, 5);
    assert_eq!(cfg.delivery, DeliveryMode::Instantaneous);
    let report = MultiDomainSim::new(cfg, 20, LookupTarget::Total)
        .unwrap()
        .run();
    assert!(report.queries > 0);
    assert_eq!(report.mean_time_to_answer_s, 0.0);
    assert_eq!(report.peak_in_flight, 0);
    assert!(report.latency_by_class.is_empty());

    // And the single-domain figures see the exact same reports.
    let a = DomainSim::new(base(30, 6)).unwrap().run();
    let b = DomainSim::new(base(30, 6)).unwrap().run();
    assert_eq!(a.push_messages, b.push_messages);
    assert_eq!(a.reconciliations, b.reconciliations);
}

#[test]
fn single_domain_rings_run_over_the_plane() {
    let cfg = with_latency(&base(30, 7), SimTime::from_millis(50));
    let report = DomainSim::new(cfg).unwrap().run();
    assert_eq!(report.queries, 40, "every scheduled query was processed");
    assert!(report.reconciliations > 0, "α-gated rings completed");
    assert!(
        report.reconciliation_messages > report.reconciliations,
        "each ring costs one token hop per live member"
    );
    assert!(report.push_messages > 0);
}

#[test]
fn sp_departures_dissolve_domains_and_rehome_partners() {
    // SP churn wired into the kernel: summary peers leave mid-run
    // (§4.3), their domains dissolve, partners re-home over the message
    // plane — and the run keeps answering queries.
    let run = |latency: bool| {
        let mut cfg = base(150, 8);
        cfg.sp_lifetime = Some(LifetimeDistribution::Exponential {
            mean_s: 2.0 * 3600.0,
        });
        if latency {
            cfg = with_latency(&cfg, SimTime::from_millis(50));
        }
        MultiDomainSim::new(cfg, 25, LookupTarget::Total)
            .unwrap()
            .run()
    };
    for latency in [false, true] {
        let report = run(latency);
        let baseline = MultiDomainSim::new(base(150, 8), 25, LookupTarget::Total)
            .unwrap()
            .run();
        assert!(
            report.n_domains < baseline.n_domains,
            "latency={latency}: departures must dissolve domains ({} vs {})",
            report.n_domains,
            baseline.n_domains
        );
        assert!(report.queries > 0, "latency={latency}: lookups still run");
        assert!(
            report.mean_recall > 0.0,
            "latency={latency}: re-homed partners still answer"
        );
    }
    // Deterministic per seed, like every other kernel process.
    let a = run(true);
    let b = run(true);
    assert_eq!(a.queries, b.queries);
    assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    assert_eq!(a.reconciliations, b.reconciliations);
}
