//! Property tests for the two caching/serialization workhorses of the
//! summary fabric: the `saintetiq::wire` codec (summaries cross the
//! network on every `localsum` and reconciliation token) and the
//! `summary_p2p::cache::QueryCache` (§5.2.2's group-locality device).

use proptest::prelude::*;

use fuzzy::descriptor::LabelId;
use p2psim::network::NodeId;
use saintetiq::cell::{CellKey, SourceId};
use saintetiq::engine::{incorporate_cell, EngineConfig};
use saintetiq::hierarchy::SummaryTree;
use saintetiq::wire;
use summary_p2p::cache::QueryCache;

/// The grid shape used by the random-tree strategy.
const SHAPE: [usize; 3] = [3, 4, 5];

/// Strategy: one random cell — its grid coordinate, owning source,
/// weight, and per-attribute grades.
fn cell() -> impl Strategy<Value = (Vec<u16>, u32, f64, Vec<f64>)> {
    (
        (
            0u16..SHAPE[0] as u16,
            0u16..SHAPE[1] as u16,
            0u16..SHAPE[2] as u16,
        ),
        0u32..12,
        0.05f64..4.0,
        (0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0),
    )
        .prop_map(|((a, b, c), src, w, (g0, g1, g2))| (vec![a, b, c], src, w, vec![g0, g1, g2]))
}

fn build_tree(cells: &[(Vec<u16>, u32, f64, Vec<f64>)]) -> SummaryTree {
    let mut tree = SummaryTree::new("prop-bk", SHAPE.to_vec());
    let cfg = EngineConfig::default();
    for (labels, src, weight, grades) in cells {
        let key = CellKey(labels.iter().map(|&l| LabelId(l)).collect());
        incorporate_cell(&mut tree, &cfg, &key, SourceId(*src), *weight, grades, None);
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode/decode is lossless for any random tree: structure, mass,
    /// per-cell weights, per-source contributions and grades all survive.
    #[test]
    fn wire_roundtrip_random_trees(cells in prop::collection::vec(cell(), 0..60)) {
        let tree = build_tree(&cells);
        tree.check_invariants();
        let bytes = wire::encode(&tree);
        let decoded = wire::decode(&bytes).expect("own encodings decode");
        decoded.check_invariants();

        prop_assert_eq!(decoded.bk_name(), tree.bk_name());
        prop_assert_eq!(decoded.label_counts(), tree.label_counts());
        prop_assert_eq!(decoded.leaf_count(), tree.leaf_count());
        prop_assert_eq!(decoded.live_node_count(), tree.live_node_count());
        prop_assert!((decoded.total_count() - tree.total_count()).abs() < 1e-9);
        let mut sa = decoded.all_sources();
        let mut sb = tree.all_sources();
        sa.sort_unstable_by_key(|s| s.0);
        sb.sort_unstable_by_key(|s| s.0);
        prop_assert_eq!(sa, sb);
        for (key, entry) in tree.cells() {
            let de = &decoded.cells()[key];
            prop_assert!((de.content.weight - entry.content.weight).abs() < 1e-9);
            prop_assert_eq!(&de.content.per_source, &entry.content.per_source);
            prop_assert_eq!(&de.content.max_grades, &entry.content.max_grades);
        }
    }

    /// A second encode of the decoded tree is byte-identical: the codec
    /// is a canonical form, so re-shipping a relayed summary (as the
    /// reconciliation ring does) never inflates it.
    #[test]
    fn wire_encoding_is_canonical(cells in prop::collection::vec(cell(), 0..40)) {
        let tree = build_tree(&cells);
        let once = wire::encode(&tree);
        let twice = wire::encode(&wire::decode(&once).expect("decodes"));
        prop_assert_eq!(&once[..], &twice[..]);
    }

    /// Truncating an encoding anywhere must error, never panic — a
    /// malformed localsum cannot take down a summary peer.
    #[test]
    fn wire_truncations_error_cleanly(
        cells in prop::collection::vec(cell(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let tree = build_tree(&cells);
        let bytes = wire::encode(&tree);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(wire::decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
    }

    /// The cache never exceeds its capacity, and always serves the most
    /// recently inserted answer for a template.
    #[test]
    fn cache_capacity_and_freshest_answer(
        capacity in 1usize..6,
        ops in prop::collection::vec((0usize..8, 0u32..50), 1..80),
    ) {
        let mut cache = QueryCache::new(capacity);
        let mut latest: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for (template, payload) in ops {
            let answering = vec![NodeId(payload), NodeId(payload + 1)];
            cache.insert(template, answering.clone());
            latest.insert(template, answering);
            prop_assert!(cache.len() <= capacity, "len {} > cap {capacity}", cache.len());
            let hit = cache.lookup(template).expect("just inserted");
            prop_assert_eq!(&hit.answering, latest.get(&template).expect("tracked"));
        }
    }

    /// LRU model check: after any op sequence, the cached template set
    /// equals the `capacity` most recently *touched* templates (inserts
    /// and lookup hits both refresh recency).
    #[test]
    fn cache_matches_lru_model(
        capacity in 1usize..5,
        ops in prop::collection::vec((prop::bool::ANY, 0usize..6), 1..60),
    ) {
        let mut cache = QueryCache::new(capacity);
        // Model: templates in MRU-first order.
        let mut model: Vec<usize> = Vec::new();
        for (is_insert, template) in ops {
            if is_insert {
                cache.insert(template, vec![NodeId(template as u32)]);
                model.retain(|&t| t != template);
                model.insert(0, template);
                model.truncate(capacity);
            } else {
                let model_hit = model.contains(&template);
                let cache_hit = cache.lookup(template).is_some();
                prop_assert_eq!(cache_hit, model_hit, "hit disagreement on {template}");
                if model_hit {
                    model.retain(|&t| t != template);
                    model.insert(0, template);
                }
            }
            let mut cached: Vec<usize> =
                (0..6).filter(|&t| cache.peek(t).is_some()).collect();
            let mut expected = model.clone();
            cached.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(cached, expected, "retained sets diverge");
        }
    }

    /// `clear` empties the cache and subsequent lookups miss — the
    /// post-reconciliation invalidation the domain layer relies on.
    #[test]
    fn cache_clear_forgets_everything(
        capacity in 1usize..6,
        templates in prop::collection::vec(0usize..10, 1..20),
    ) {
        let mut cache = QueryCache::new(capacity);
        for &t in &templates {
            cache.insert(t, vec![NodeId(1)]);
        }
        cache.clear();
        prop_assert!(cache.is_empty());
        for &t in &templates {
            prop_assert!(cache.lookup(t).is_none());
        }
    }
}
