//! End-to-end integration: Table 1 → fuzzy mapping → summary hierarchy →
//! query reformulation → approximate answer and peer localization, with
//! exact evaluation as ground truth. Exercises every crate in one flow.

use fuzzy::BackgroundKnowledge;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::generator::{patient_table, MatchTarget, PatientDistributions};
use relation::predicate::Predicate;
use relation::query::SelectQuery;
use relation::schema::Schema;
use relation::table::Table;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::merge::merge_into;
use saintetiq::query::approx::approximate_answer;
use saintetiq::query::proposition::reformulate;
use saintetiq::query::relevant_sources;
use saintetiq::wire;

fn engine_for(source: u32) -> SaintEtiQEngine {
    SaintEtiQEngine::new(
        BackgroundKnowledge::medical_cbk(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(source),
    )
    .expect("CBK binds to the Patient schema")
}

/// The paper's complete §3–§5 walk-through.
#[test]
fn paper_walkthrough() {
    let bk = BackgroundKnowledge::medical_cbk();
    let table = Table::patient_table1();
    let mut engine = engine_for(0);
    engine.summarize_table(&table);

    // Table 2: three cells with counts 2 / 0.7 / 0.3.
    assert_eq!(engine.tree().leaf_count(), 3);

    // §5.1 query, reformulated.
    let query = SelectQuery::paper_example();
    let sq = reformulate(&query, &bk).unwrap();
    assert_eq!(
        sq.render(&bk),
        "(female) AND (underweight OR normal) AND (anorexia)"
    );

    // §5.2.2: approximate answer = age {young}, weight 2 (t1 and t3).
    let answers = approximate_answer(engine.tree(), &sq);
    let total: f64 = answers.iter().map(|a| a.weight).sum();
    assert!((total - 2.0).abs() < 1e-9);
    for a in &answers {
        assert!(a.render(&bk).contains("age = {young}"));
    }

    // Exact evaluation agrees on the cohort.
    let exact = query.evaluate_projected(&table).unwrap();
    assert_eq!(exact.len(), 2);
}

/// Summary-based routing agrees with exact evaluation on crisp
/// (categorical) predicates across many random peers.
#[test]
fn routing_matches_exact_evaluation() {
    let bk = BackgroundKnowledge::medical_cbk();
    let mut rng = StdRng::seed_from_u64(17);
    let dist = PatientDistributions::default();
    let query = SelectQuery::new(
        vec!["age".into()],
        vec![Predicate::eq("disease", "malaria")],
    );
    let sq = reformulate(&query, &bk).unwrap();

    let mut gs = saintetiq::hierarchy::SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
    let mut truth = Vec::new();
    for p in 0..40u32 {
        let target = MatchTarget {
            disease: Some("malaria".into()),
            ..Default::default()
        };
        let matches = p % 4 == 0;
        let table = patient_table(&mut rng, 20, &dist, &target, if matches { 2 } else { 0 });
        truth.push(query.matches_any(&table).unwrap());
        let mut e = engine_for(p);
        e.summarize_table(&table);
        merge_into(&mut gs, e.tree(), &EngineConfig::default()).unwrap();
    }
    let routed = relevant_sources(&gs, &sq.proposition);
    for p in 0..40u32 {
        let in_route = routed.contains(&SourceId(p));
        assert_eq!(in_route, truth[p as usize], "peer {p}");
    }
}

/// Range predicates may produce false positives (fuzzy extension) but
/// never false negatives: QS ⊆ QS* (§5.1).
#[test]
fn no_false_negatives_on_range_queries() {
    let bk = BackgroundKnowledge::medical_cbk();
    let mut rng = StdRng::seed_from_u64(23);
    let dist = PatientDistributions::default();
    let query = SelectQuery::new(vec!["age".into()], vec![Predicate::lt("bmi", 19.0)]);
    let sq = reformulate(&query, &bk).unwrap();

    let mut gs = saintetiq::hierarchy::SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
    let mut tables = Vec::new();
    for p in 0..30u32 {
        let table = patient_table(&mut rng, 15, &dist, &MatchTarget::default(), 0);
        let mut e = engine_for(p);
        e.summarize_table(&table);
        merge_into(&mut gs, e.tree(), &EngineConfig::default()).unwrap();
        tables.push(table);
    }
    let routed = relevant_sources(&gs, &sq.proposition);
    for (p, table) in tables.iter().enumerate() {
        if query.matches_any(table).unwrap() {
            assert!(
                routed.contains(&SourceId(p as u32)),
                "false negative at peer {p}: matching peer not localized"
            );
        }
    }
}

/// Local summaries survive the wire; a reconstructed GS from decoded
/// summaries equals one built from the originals.
#[test]
fn wire_roundtrip_through_merge() {
    let mut rng = StdRng::seed_from_u64(31);
    let dist = PatientDistributions::default();
    let cfg = EngineConfig::default();

    let mut direct = saintetiq::hierarchy::SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
    let mut via_wire = direct.clone();
    for p in 0..10u32 {
        let table = patient_table(&mut rng, 25, &dist, &MatchTarget::default(), 0);
        let mut e = engine_for(p);
        e.summarize_table(&table);
        let tree = e.into_tree();
        merge_into(&mut direct, &tree, &cfg).unwrap();
        let decoded = wire::decode(&wire::encode(&tree)).unwrap();
        merge_into(&mut via_wire, &decoded, &cfg).unwrap();
    }
    assert_eq!(direct.leaf_count(), via_wire.leaf_count());
    assert!((direct.total_count() - via_wire.total_count()).abs() < 1e-9);
    for (k, entry) in direct.cells() {
        let other = &via_wire.cells()[k];
        assert!((entry.content.weight - other.content.weight).abs() < 1e-9);
        assert_eq!(
            entry.content.per_source.keys().collect::<Vec<_>>(),
            other.content.per_source.keys().collect::<Vec<_>>()
        );
    }
}

/// Incremental maintenance (push mode) tracks a mutating database to the
/// same summary a fresh rebuild produces, across a long edit script.
#[test]
fn incremental_equals_rebuild_after_edit_script() {
    let mut rng = StdRng::seed_from_u64(37);
    let dist = PatientDistributions::default();
    let mut table = patient_table(&mut rng, 40, &dist, &MatchTarget::default(), 0);
    let mut incremental = engine_for(1);
    incremental.summarize_table(&table);
    table.drain_changes();

    use rand::Rng;
    for step in 0..120 {
        let ids: Vec<relation::tuple::TupleId> = table.iter().map(|(id, _)| id).collect();
        match step % 3 {
            0 => {
                table
                    .insert(relation::generator::random_patient(&mut rng, &dist))
                    .unwrap();
            }
            1 if !ids.is_empty() => {
                let id = ids[rng.gen_range(0..ids.len())];
                table.delete(id).unwrap();
            }
            _ if !ids.is_empty() => {
                let id = ids[rng.gen_range(0..ids.len())];
                table
                    .update(id, relation::generator::random_patient(&mut rng, &dist))
                    .unwrap();
            }
            _ => {}
        }
        let changes = table.drain_changes();
        incremental.apply_changes(&table, &changes);
    }
    incremental.tree().check_invariants();

    let mut fresh = engine_for(1);
    fresh.summarize_table(&table);
    assert_eq!(incremental.tree().leaf_count(), fresh.tree().leaf_count());
    assert!((incremental.tree().total_count() - fresh.tree().total_count()).abs() < 1e-6);
    for (k, entry) in incremental.tree().cells() {
        let w = fresh.tree().cells()[k].content.weight;
        assert!((entry.content.weight - w).abs() < 1e-6, "drift on {k:?}");
    }
}
