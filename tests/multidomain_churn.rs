//! Integration tests of the unified simulation kernel: inter-domain
//! lookups (§5.2.2) routed *while* churn, drift and reconciliation
//! mutate every domain's global summary — the dynamic network-scale
//! scenario the old static `MultiDomainSystem` could not express.

use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::kernel::{LookupTarget, MultiDomainSim};
use summary_p2p::scenario::{figure_multidomain_churn, scale_churn, with_latency};

fn base(n: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n, 0.3);
    c.horizon = SimTime::from_hours(6);
    c.query_count = 40;
    c.records_per_peer = 10;
    c.seed = seed;
    c
}

#[test]
fn recall_degrades_with_churn_rate() {
    // Same network, same workload, two churn intensities. α is pinned
    // high so the pull frequency cannot scale along with the churn (at
    // the paper's α the reconciliation rate adapts and recall stays in
    // the α-band regardless of turnover — that adaptation is exactly
    // what `lower_alpha_sustains_higher_recall_under_equal_churn`
    // measures). With the pull nearly frozen, staleness accumulates with
    // the churn rate and total-lookup recall drops monotonically.
    let mut b = base(150, 1);
    b.alpha = 1.0;
    let rows =
        figure_multidomain_churn(&[0.25, 4.0], &b, 25, LookupTarget::Total).expect("valid config");
    assert_eq!(rows.len(), 2);
    let (calm, stormy) = (&rows[0], &rows[1]);
    assert!(calm.report.queries > 0 && stormy.report.queries > 0);
    assert!(
        stormy.mean_recall < calm.mean_recall,
        "churn x4 recall {} must sit below churn x0.25 recall {}",
        stormy.mean_recall,
        calm.mean_recall
    );
    assert!(
        stormy.mean_false_negatives > calm.mean_false_negatives,
        "faster churn must miss more live matches: {} vs {}",
        stormy.mean_false_negatives,
        calm.mean_false_negatives
    );
}

#[test]
fn reconciliation_recovers_recall_mid_run() {
    // Two identically-seeded dynamic runs advanced to the same virtual
    // time; one forces a reconciliation round in every domain before
    // probing. The pull rebuilds each GS from live members, so the same
    // total lookups recover the matches staleness was hiding.
    let cfg = {
        let mut c = scale_churn(&base(150, 2), 3.0); // aggressive drift
        c.alpha = 1.0; // reconciliation fires only when a CL is fully stale
        c
    };
    let probe_at = SimTime::from_hours(3);

    let probe = |sim: &mut MultiDomainSim| -> (f64, usize) {
        let origins = sim.live_origins();
        assert!(!origins.is_empty(), "someone is online at the probe time");
        let mut recall_sum = 0.0;
        let mut totals = 0usize;
        let picks: Vec<_> = origins.iter().copied().take(6).collect();
        let n = picks.len();
        for origin in picks {
            let out = sim.route_now(origin, 0, LookupTarget::Total);
            recall_sum += out.recall();
            totals += out.results_total;
        }
        (recall_sum / n as f64, totals)
    };

    let mut stale_sim = MultiDomainSim::new(cfg, 25, LookupTarget::Total).unwrap();
    stale_sim.advance_to(probe_at);
    assert!(
        stale_sim.mean_stale_fraction() > 0.0,
        "three hours of drift must have flagged someone"
    );
    let (recall_stale, totals) = probe(&mut stale_sim);
    assert!(totals > 0, "ground truth exists at the probe time");

    let mut fresh_sim = MultiDomainSim::new(cfg, 25, LookupTarget::Total).unwrap();
    fresh_sim.advance_to(probe_at);
    fresh_sim.reconcile_all();
    assert_eq!(
        fresh_sim.mean_stale_fraction(),
        0.0,
        "the pull resets every CL"
    );
    let (recall_fresh, _) = probe(&mut fresh_sim);

    assert!(
        recall_stale < 1.0,
        "staleness must be visible before the pull (recall {recall_stale})"
    );
    assert!(
        recall_fresh > recall_stale,
        "reconciliation must recover recall: fresh {recall_fresh} vs stale {recall_stale}"
    );
    assert!(
        recall_fresh > 0.95,
        "freshly pulled summaries localize (nearly) every live match: {recall_fresh}"
    );
}

#[test]
fn stale_answers_appear_under_churn_and_not_in_static_build() {
    // The same configuration frozen at t = 0 has no stale answers; run
    // under churn, summary-selected peers start failing ground truth.
    let cfg = scale_churn(&base(150, 3), 2.0);
    let report = MultiDomainSim::new(cfg, 25, LookupTarget::Total)
        .unwrap()
        .run();
    assert!(report.queries > 0);
    assert!(
        report.mean_stale_answers > 0.0,
        "churn must surface stale answers network-wide"
    );

    let mut static_sys = summary_p2p::system::MultiDomainSystem::build(&base(150, 3), 25).unwrap();
    let origin = static_sys
        .true_matches(0)
        .first()
        .copied()
        .expect("matches exist");
    let out = static_sys.route(origin, 0, LookupTarget::Total);
    assert_eq!(out.stale_answers, 0, "frozen build is perfectly fresh");
}

#[test]
fn lower_alpha_sustains_higher_recall_under_equal_churn() {
    // The maintenance knob of §4.2.2, now measurable network-wide: at
    // equal churn, more frequent reconciliation (lower α) keeps global
    // summaries closer to ground truth.
    let run = |alpha: f64| {
        let mut c = scale_churn(&base(150, 4), 3.0);
        c.alpha = alpha;
        MultiDomainSim::new(c, 25, LookupTarget::Total)
            .unwrap()
            .run()
    };
    let strict = run(0.15);
    let lax = run(0.95);
    assert!(
        strict.reconciliations > lax.reconciliations,
        "α gates the pull frequency: {} vs {}",
        strict.reconciliations,
        lax.reconciliations
    );
    assert!(
        strict.mean_recall >= lax.mean_recall,
        "α=0.15 recall {} must not fall below α=0.95 recall {}",
        strict.mean_recall,
        lax.mean_recall
    );
}

#[test]
fn stale_answer_rate_grows_with_ring_latency() {
    // With the message plane on, the reconciliation token crawls the
    // ring at link speed: slower links stretch the staleness window
    // between a peer churning and the GS noticing, so summary-selected
    // peers fail ground truth more often per lookup.
    let cfg = scale_churn(&base(150, 2), 2.0);
    let run = |hop_ms: u64| {
        MultiDomainSim::new(
            with_latency(&cfg, SimTime::from_millis(hop_ms)),
            25,
            LookupTarget::Total,
        )
        .unwrap()
        .run()
    };
    let crisp = run(1);
    let sluggish = run(20_000);
    assert!(crisp.queries > 0 && sluggish.queries > 0);
    assert!(
        sluggish.mean_stale_answers > crisp.mean_stale_answers,
        "20 s ring hops must serve more stale answers than 1 ms hops: {} vs {}",
        sluggish.mean_stale_answers,
        crisp.mean_stale_answers
    );
    assert!(
        sluggish.mean_time_to_answer_s > crisp.mean_time_to_answer_s,
        "and answer slower: {} vs {}",
        sluggish.mean_time_to_answer_s,
        crisp.mean_time_to_answer_s
    );
}

#[test]
fn dynamic_runs_are_deterministic_per_seed() {
    let cfg = scale_churn(&base(120, 5), 2.0);
    let a = MultiDomainSim::new(cfg, 20, LookupTarget::Partial(5))
        .unwrap()
        .run();
    let b = MultiDomainSim::new(cfg, 20, LookupTarget::Partial(5))
        .unwrap()
        .run();
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.push_messages, b.push_messages);
    assert_eq!(a.reconciliations, b.reconciliations);
    assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    assert!((a.mean_messages - b.mean_messages).abs() < 1e-12);
}
