//! Integration tests of the maintenance protocols (§4.2–§4.3) through
//! the event-driven domain simulation.

use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::domain::DomainSim;
use summary_p2p::routing::RoutingPolicy;

fn cfg(n: usize, alpha: f64, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n, alpha);
    c.horizon = SimTime::from_hours(6);
    c.query_count = 40;
    c.records_per_peer = 12;
    c.seed = seed;
    c
}

#[test]
fn reconciliation_frequency_scales_inversely_with_alpha() {
    let mut counts = Vec::new();
    for alpha in [0.1, 0.3, 0.6, 0.9] {
        let report = DomainSim::new(cfg(50, alpha, 1)).unwrap().run();
        counts.push((alpha, report.reconciliations));
    }
    // Monotone non-increasing in alpha (allow equality at the tail).
    for w in counts.windows(2) {
        assert!(
            w[0].1 >= w[1].1,
            "alpha {} had {} reconciliations, alpha {} had {}",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }
    assert!(counts[0].1 > counts[3].1, "strictly more at the extremes");
}

#[test]
fn push_traffic_is_alpha_independent() {
    // Eq. (1): the 1/L push term does not depend on alpha.
    let a = DomainSim::new(cfg(50, 0.1, 2)).unwrap().run();
    let b = DomainSim::new(cfg(50, 0.9, 2)).unwrap().run();
    assert_eq!(a.push_messages, b.push_messages);
}

#[test]
fn no_churn_no_drift_means_no_maintenance() {
    let mut c = cfg(30, 0.3, 3);
    // Summaries that (statistically) never expire within the horizon and
    // no failures: push traffic only from the few long-tail expiries.
    c.lifetime = p2psim::churn::LifetimeDistribution::Exponential { mean_s: 1e9 };
    c.mean_downtime_s = 1e9;
    c.failure_fraction = 0.0;
    let report = DomainSim::new(c).unwrap().run();
    assert_eq!(report.push_messages, 0, "nothing drifted, nothing left");
    assert_eq!(report.reconciliations, 0);
    // And queries are perfect: the GS exactly describes the domain.
    assert!((report.mean_recall() - 1.0).abs() < 1e-9);
    assert!((report.mean_precision() - 1.0).abs() < 1e-9);
}

#[test]
fn silent_failures_poison_until_reconciliation() {
    // All departures are failures: no pushes from leaves, so staleness
    // is invisible to the CL and real FPs appear.
    let mut with_failures = cfg(40, 0.3, 4);
    with_failures.failure_fraction = 1.0;
    let rf = DomainSim::new(with_failures).unwrap().run();

    let mut graceful = cfg(40, 0.3, 4);
    graceful.failure_fraction = 0.0;
    let rg = DomainSim::new(graceful).unwrap().run();

    // Graceful leaves trigger pushes (leave notifications), failures
    // don't.
    assert!(rg.push_messages > rf.push_messages);
    // Failures leave poison: precision with failures must not beat the
    // graceful world.
    assert!(rf.mean_precision() <= rg.mean_precision() + 0.05);
}

#[test]
fn extended_policy_maximizes_recall() {
    let mut base = cfg(40, 0.6, 5);
    base.policy = RoutingPolicy::Extended;
    let ext = DomainSim::new(base).unwrap().run();

    let mut fresh = cfg(40, 0.6, 5);
    fresh.policy = RoutingPolicy::FreshOnly;
    let fr = DomainSim::new(fresh).unwrap().run();

    assert!(
        ext.mean_recall() >= fr.mean_recall(),
        "extended {} vs fresh-only {}",
        ext.mean_recall(),
        fr.mean_recall()
    );
    assert!(
        fr.mean_precision() >= ext.mean_precision(),
        "fresh-only {} vs extended {}",
        fr.mean_precision(),
        ext.mean_precision()
    );
}

#[test]
fn update_traffic_grows_linearly_with_domain_size() {
    let small = DomainSim::new(cfg(20, 0.3, 6)).unwrap().run();
    let large = DomainSim::new(cfg(80, 0.3, 6)).unwrap().run();
    let ratio = large.update_messages() as f64 / small.update_messages().max(1) as f64;
    // 4x the peers: traffic should grow roughly 2x–8x, not explode
    // quadratically (Figure 6's "messages per node remains almost the
    // same").
    assert!((1.5..=10.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn gs_stays_well_formed_through_the_whole_run() {
    let sim = DomainSim::new(cfg(30, 0.2, 7)).unwrap();
    sim.gs().check_invariants();
    let report = sim.run();
    assert!(report.gs_cells > 0);
    assert!(report.gs_bytes > 0);
}

#[test]
fn seeds_change_outcomes_but_not_validity() {
    let a = DomainSim::new(cfg(30, 0.3, 100)).unwrap().run();
    let b = DomainSim::new(cfg(30, 0.3, 101)).unwrap().run();
    // Different seeds: almost surely different traffic...
    assert_ne!(
        (a.push_messages, a.reconciliations),
        (b.push_messages, b.reconciliations)
    );
    // ...but all invariants hold for both.
    for r in [a, b] {
        assert!((0.0..=1.0).contains(&r.worst_stale_fraction()));
        assert!((0.0..=1.0).contains(&r.mean_recall()));
        assert!((0.0..=1.0).contains(&r.mean_precision()));
    }
}
