//! Cross-crate property tests: the summary layer's invariants under
//! arbitrary generated databases and merge orders.

use fuzzy::BackgroundKnowledge;
use proptest::prelude::*;
use relation::schema::Schema;
use relation::table::Table;
use relation::value::Value;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::hierarchy::SummaryTree;
use saintetiq::merge::merge_into;
use saintetiq::wire;

/// Strategy: a random patient row within the CBK's domains.
fn patient_row() -> impl Strategy<Value = Vec<Value>> {
    (
        0i64..100,
        prop::bool::ANY,
        12.0f64..45.0,
        prop::sample::select(vec![
            "malaria",
            "tuberculosis",
            "influenza",
            "anorexia",
            "bulimia",
            "diabetes",
            "hypertension",
            "asthma",
        ]),
    )
        .prop_map(|(age, female, bmi, disease)| {
            vec![
                Value::Int(age),
                Value::text(if female { "female" } else { "male" }),
                Value::Float((bmi * 10.0).round() / 10.0),
                Value::text(disease),
            ]
        })
}

fn summarize(rows: &[Vec<Value>], source: u32) -> SummaryTree {
    let mut table = Table::new(Schema::patient());
    for r in rows {
        table.insert(r.clone()).expect("row conforms");
    }
    let mut e = SaintEtiQEngine::new(
        BackgroundKnowledge::medical_cbk(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(source),
    )
    .expect("CBK binds");
    e.summarize_table(&table);
    e.into_tree()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mass conservation: total summary weight equals the row count, for
    /// any database.
    #[test]
    fn summarization_conserves_mass(rows in prop::collection::vec(patient_row(), 1..80)) {
        let tree = summarize(&rows, 1);
        tree.check_invariants();
        prop_assert!((tree.total_count() - rows.len() as f64).abs() < 1e-6);
        prop_assert!(tree.leaf_count() <= 3 * 3 * 3 * 12, "bounded by the grid");
    }

    /// The wire codec is lossless for any generated summary.
    #[test]
    fn wire_roundtrip_any_database(rows in prop::collection::vec(patient_row(), 1..60)) {
        let tree = summarize(&rows, 2);
        let decoded = wire::decode(&wire::encode(&tree)).expect("roundtrip");
        decoded.check_invariants();
        prop_assert_eq!(decoded.leaf_count(), tree.leaf_count());
        prop_assert!((decoded.total_count() - tree.total_count()).abs() < 1e-9);
        prop_assert_eq!(decoded.live_node_count(), tree.live_node_count());
    }

    /// Merging is mass-additive and extent-unioning regardless of the
    /// participating databases.
    #[test]
    fn merge_mass_and_extents(
        a in prop::collection::vec(patient_row(), 1..40),
        b in prop::collection::vec(patient_row(), 1..40),
    ) {
        let ta = summarize(&a, 1);
        let tb = summarize(&b, 2);
        let mut merged = ta.clone();
        merge_into(&mut merged, &tb, &EngineConfig::default()).expect("same CBK");
        merged.check_invariants();
        prop_assert!(
            (merged.total_count() - (ta.total_count() + tb.total_count())).abs() < 1e-6
        );
        prop_assert_eq!(merged.all_sources(), vec![SourceId(1), SourceId(2)]);
    }

    /// Merge is cell-commutative: A∪B and B∪A hold identical cells.
    #[test]
    fn merge_commutes_on_cells(
        a in prop::collection::vec(patient_row(), 1..30),
        b in prop::collection::vec(patient_row(), 1..30),
    ) {
        let ta = summarize(&a, 1);
        let tb = summarize(&b, 2);
        let cfg = EngineConfig::default();
        let mut ab = ta.clone();
        merge_into(&mut ab, &tb, &cfg).expect("same CBK");
        let mut ba = tb.clone();
        merge_into(&mut ba, &ta, &cfg).expect("same CBK");
        let ka: Vec<_> = ab.cells().keys().cloned().collect();
        let kb: Vec<_> = ba.cells().keys().cloned().collect();
        prop_assert_eq!(&ka, &kb);
        for k in &ka {
            let wa = ab.cells()[k].content.weight;
            let wb = ba.cells()[k].content.weight;
            prop_assert!((wa - wb).abs() < 1e-9);
        }
    }

    /// Removing a source after merging restores the original cell set.
    #[test]
    fn merge_then_remove_source_restores(
        a in prop::collection::vec(patient_row(), 1..30),
        b in prop::collection::vec(patient_row(), 1..30),
    ) {
        let ta = summarize(&a, 1);
        let tb = summarize(&b, 2);
        let mut merged = ta.clone();
        merge_into(&mut merged, &tb, &EngineConfig::default()).expect("same CBK");
        merged.remove_source(SourceId(2));
        merged.check_invariants();
        prop_assert_eq!(merged.leaf_count(), ta.leaf_count());
        prop_assert!((merged.total_count() - ta.total_count()).abs() < 1e-6);
        for (k, entry) in ta.cells() {
            let w = merged.cells()[k].content.weight;
            prop_assert!((entry.content.weight - w).abs() < 1e-6);
        }
    }
}
