//! Integration: external data (CSV) → summarization → routing and
//! statistics-enriched approximate answering — the adoption path a
//! downstream user of the library would take.

use fuzzy::BackgroundKnowledge;
use relation::csv::{read_csv, write_csv};
use relation::predicate::Predicate;
use relation::query::SelectQuery;
use relation::schema::Schema;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::query::approx::{approximate_answer, approximate_answer_with_stats};
use saintetiq::query::proposition::reformulate;

const WARD_CSV: &str = "\
age,sex,bmi,disease
8,female,15.2,malaria
11,male,16.8,malaria
9,male,15.9,malaria
14,female,17.1,malaria
82,male,22.0,malaria
35,female,24.5,diabetes
52,male,28.1,hypertension
47,female,26.0,hypertension
61,male,31.2,diabetes
29,female,21.5,asthma
";

#[test]
fn csv_to_summary_to_answer() {
    let table = read_csv(WARD_CSV.as_bytes(), Schema::patient()).unwrap();
    assert_eq!(table.len(), 10);

    let bk = BackgroundKnowledge::medical_cbk();
    let mut engine = SaintEtiQEngine::new(
        bk.clone(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(0),
    )
    .unwrap();
    engine.summarize_table(&table);
    engine.tree().check_invariants();

    let query = SelectQuery::new(
        vec!["age".into()],
        vec![Predicate::eq("disease", "malaria")],
    );
    let sq = reformulate(&query, &bk).unwrap();

    // Plain answer: the young cohort dominates, the old tail appears.
    let answers = approximate_answer(engine.tree(), &sq);
    let total: f64 = answers.iter().map(|a| a.weight).sum();
    assert!((total - 5.0).abs() < 1e-9, "five malaria patients");
    let age_attr = bk.attribute_index("age").unwrap();
    let vocab = bk.attribute_at(age_attr).unwrap();
    let young = vocab.label_id("young").unwrap();
    let old = vocab.label_id("old").unwrap();
    let has = |label| {
        answers.iter().any(|a| {
            a.answer
                .iter()
                .any(|(at, s)| *at == age_attr && s.contains(label))
        })
    };
    assert!(has(young), "children cohort present");
    assert!(has(old), "elderly tail present");

    // Stats-enriched answer matches the exact moments of the cohort.
    let enriched = approximate_answer_with_stats(engine.tree(), &sq);
    let mut count = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (_, stats) in &enriched {
        let s = &stats.iter().find(|c| c.attr == age_attr).unwrap().stats;
        count += s.count();
        if let (Some(lo), Some(hi)) = (s.min(), s.max()) {
            min = min.min(lo);
            max = max.max(hi);
        }
    }
    assert!((count - 5.0).abs() < 1e-9);
    assert_eq!(min, 8.0);
    assert_eq!(max, 82.0);

    // Exact evaluation agrees on the cohort size.
    assert_eq!(query.evaluate(&table).unwrap().len(), 5);
}

#[test]
fn csv_roundtrip_preserves_summarization() {
    let table = read_csv(WARD_CSV.as_bytes(), Schema::patient()).unwrap();
    let mut buf = Vec::new();
    write_csv(&table, &mut buf).unwrap();
    let reloaded = read_csv(&buf[..], Schema::patient()).unwrap();

    let bk = BackgroundKnowledge::medical_cbk();
    let summarize = |t: &relation::table::Table| {
        let mut e = SaintEtiQEngine::new(
            bk.clone(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(0),
        )
        .unwrap();
        e.summarize_table(t);
        e.into_tree()
    };
    let a = summarize(&table);
    let b = summarize(&reloaded);
    assert_eq!(a.leaf_count(), b.leaf_count());
    assert!((a.total_count() - b.total_count()).abs() < 1e-9);
    for (k, entry) in a.cells() {
        assert!((entry.content.weight - b.cells()[k].content.weight).abs() < 1e-9);
    }
}
