//! Shape tests for the figure drivers: at reduced scale, every trend the
//! paper reports must already be visible. These are the claims
//! EXPERIMENTS.md records at paper scale.

use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::costmodel;
use summary_p2p::scenario::{figure4, figure5, figure6, figure7};

fn base(seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(0, 0.3);
    c.horizon = SimTime::from_hours(5);
    c.query_count = 30;
    c.records_per_peer = 10;
    c.seed = seed;
    c
}

#[test]
fn figure4_stale_fraction_grows_with_alpha() {
    let rows = figure4(&[40], &[0.1, 0.4, 0.8], &base(1)).unwrap();
    assert_eq!(rows.len(), 3);
    assert!(
        rows[0].worst_stale < rows[2].worst_stale,
        "alpha 0.1 ({}) must stay below alpha 0.8 ({})",
        rows[0].worst_stale,
        rows[2].worst_stale
    );
}

#[test]
fn figure4_stale_fraction_bounded_by_alpha_neighborhood() {
    // The trigger fires at alpha, so the time-averaged staleness a query
    // sees stays in the alpha neighborhood — the basis of the paper's
    // "limited to 11% at alpha=0.3" reading.
    let rows = figure4(&[60], &[0.3], &base(2)).unwrap();
    let s = rows[0].worst_stale;
    assert!(
        s < 0.3 + 0.15,
        "stale fraction {s} wildly exceeds the alpha band"
    );
}

#[test]
fn figure5_sits_below_figure4() {
    let b = base(3);
    let worst = figure4(&[50], &[0.3], &b).unwrap()[0].worst_stale;
    let real = figure5(&[50], &b).unwrap()[0].real_fn;
    assert!(
        real < worst,
        "real FN fraction {real} must sit below the worst case {worst}"
    );
    // The paper reports a 4.5x reduction; at small scale we only require
    // a clear gap.
    assert!(
        real <= worst * 0.8,
        "expected a clear reduction: {real} vs {worst}"
    );
}

#[test]
fn figure6_per_node_rate_is_flat_across_sizes() {
    let rows = figure6(&[20, 40, 80], &[0.3], &base(4)).unwrap();
    let rates: Vec<f64> = rows.iter().map(|r| r.per_node_s).collect();
    let max = rates.iter().fold(0.0f64, |a, &b| a.max(b));
    let min = rates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    assert!(
        max / min.max(1e-12) < 6.0,
        "per-node update rate should be roughly flat: {rates:?}"
    );
    // Totals must grow.
    assert!(rows[2].total_messages > rows[0].total_messages);
}

#[test]
fn figure6_alpha_tightening_costs_little() {
    let rows = figure6(&[60], &[0.3, 0.8], &base(5)).unwrap();
    let tight = rows.iter().find(|r| r.alpha == 0.3).unwrap();
    let lax = rows.iter().find(|r| r.alpha == 0.8).unwrap();
    let ratio = tight.total_messages as f64 / lax.total_messages.max(1) as f64;
    // Paper: ~1.2x. Allow a wide band at small scale, but the order of
    // magnitude must hold (not 10x).
    assert!((1.0..=4.0).contains(&ratio), "cost ratio {ratio}");
}

#[test]
fn figure7_ordering_and_growth() {
    let rows = figure7(&[100, 500, 1500], 0.11, &base(6), 15);
    for r in &rows {
        assert!(r.centralized <= r.summary_querying, "{r:?}");
        assert!(r.summary_querying < r.flooding, "{r:?}");
        assert!(r.flooding_recall <= 1.0);
    }
    // Costs grow with n for every algorithm.
    assert!(rows[2].centralized > rows[0].centralized);
    assert!(rows[2].summary_querying > rows[0].summary_querying);
    assert!(rows[2].flooding > rows[0].flooding);
}

#[test]
fn figure7_flooding_recall_degrades_with_scale() {
    let rows = figure7(&[100, 2000], 0.11, &base(7), 15);
    assert!(
        rows[1].flooding_recall < rows[0].flooding_recall,
        "TTL-3 flooding covers less of a bigger network: {} vs {}",
        rows[1].flooding_recall,
        rows[0].flooding_recall
    );
}

#[test]
fn cost_model_matches_paper_arithmetic() {
    // §6.2.3's worked numbers: CQ = 10·Cd + 9·Cf with |P_Q| = 0.01·n.
    let n = 2000;
    let fp = 0.11;
    let pq = 0.01 * n as f64; // 20
    let cd = costmodel::domain_query_cost(pq, fp);
    let cf = costmodel::interdomain_flood_cost(pq, fp, 3.5, 1);
    let cq = costmodel::figure7_sq_cost(n, fp, 3.5);
    assert!((cq - (10.0 * cd + 9.0 * cf)).abs() < 1e-9);
    // Centralized at n=2000: 1 + 2·200 = 401.
    assert_eq!(costmodel::centralized_cost(n, 0.1), 401.0);
}
