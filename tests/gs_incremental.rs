//! Property tests of incremental global-summary maintenance: after any
//! interleaving of drift, graceful leave, silent crash, rejoin,
//! re-homed joiner and SP-departure dissolution, a completed
//! reconciliation round must leave the incrementally maintained GS
//! **byte-identical** to the from-scratch rebuild over every live
//! member's current local summary — and observably equivalent for
//! query routing. Plus the latency-plane guarantee: a *partial* ring
//! (token dropped by mid-ring churn) leaves the accumulator in exactly
//! the "visited refreshed, missed retained, departed expired" state.

use fuzzy::bk::BackgroundKnowledge;
use p2psim::network::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saintetiq::cell::SourceId;
use saintetiq::query::proposition::reformulate;
use saintetiq::query::relevant_sources;
use saintetiq::wire;
use summary_p2p::freshness::Freshness;
use summary_p2p::peerstate::{
    empty_accumulator, DomainCore, MessageLedger, PeerState, SummarySnapshot,
};
use summary_p2p::workload::{generate_peer_data, make_templates, QueryTemplate};

const N: u32 = 10;
const STRANGERS: u32 = 2;
const RECORDS: usize = 6;

fn templates() -> Vec<QueryTemplate> {
    make_templates(2)
}

fn setup(seed: u64) -> (DomainCore, Vec<Option<PeerState>>) {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = templates();
    let mut rng = StdRng::seed_from_u64(seed);
    let peers: Vec<Option<PeerState>> = (0..N + STRANGERS)
        .map(|p| {
            Some(PeerState::new(
                generate_peer_data(&mut rng, p, &bk, &templates, 0.3, RECORDS)
                    .expect("valid workload"),
            ))
        })
        .collect();
    let mut core = DomainCore::new(None, (0..N).map(NodeId).collect());
    let mut peers = peers;
    core.enroll_all(&mut peers, &mut MessageLedger::new())
        .expect("enrollment succeeds");
    (core, peers)
}

fn regenerate(peers: &mut [Option<PeerState>], p: u32, seed: u64) {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = templates();
    let mut rng = StdRng::seed_from_u64(seed);
    let data =
        generate_peer_data(&mut rng, p, &bk, &templates, 0.3, RECORDS).expect("valid workload");
    peers[p as usize].as_mut().expect("slot exists").data = data;
}

/// One protocol-level operation of the interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Member data drifts (regenerate + `v = 1` push).
    Drift(u32, u64),
    /// Graceful leave (`v = 2` push, peer goes down).
    Leave(u32),
    /// Silent crash (no push — GS poison until the pull).
    Crash(u32),
    /// Rejoin (localsum, enters CL stale).
    Rejoin(u32),
    /// A re-homed stranger from a dissolved foreign domain arrives.
    JoinStranger(u32),
    /// A full §4.2.2 pull completes.
    Reconcile,
    /// The SP departs: the domain dissolves (§4.3).
    Dissolve,
}

/// Decodes one `(kind, peer, seed)` sample into an operation. Kinds are
/// weighted so pulls are common and dissolution is rare (it ends the
/// domain's useful life).
fn decode_op(kind: u8, peer: u32, seed: u64) -> Op {
    match kind % 16 {
        0..=3 => Op::Drift(peer % N, seed),
        4..=5 => Op::Leave(peer % N),
        6..=7 => Op::Crash(peer % N),
        8..=10 => Op::Rejoin(peer % N),
        11 => Op::JoinStranger(peer % STRANGERS),
        12..=14 => Op::Reconcile,
        _ => Op::Dissolve,
    }
}

/// Asserts the observable-equivalence properties: byte-identical
/// encodings against the accumulator-based oracle, identical query
/// routing (peer localization) for every workload template, and — as an
/// *accumulator-independent* cross-check — per-cell content exactly
/// equal to the PR-2 destructive `merge_into` construction (which
/// shares no code with `GsAccumulator`, so a flattening bug cannot
/// reproduce on both sides).
fn assert_equivalent(core: &DomainCore, peers: &[Option<PeerState>]) {
    let oracle = core.full_rebuild_oracle(peers).expect("oracle rebuild");
    assert_eq!(
        wire::encode(&core.gs),
        wire::encode(&oracle),
        "incremental GS must match the from-scratch oracle byte-for-byte"
    );
    let bk = BackgroundKnowledge::medical_cbk();
    for tpl in templates() {
        let sq = reformulate(&tpl.query, &bk).expect("reformulates");
        assert_eq!(
            relevant_sources(&core.gs, &sq.proposition),
            relevant_sources(&oracle, &sq.proposition),
            "peer localization must agree"
        );
    }
    // Independent witness: rebuild through the destructive merge path,
    // visiting members in id order — the same per-cell fold order
    // `build_merged` uses — so per-cell weights, per-source maps,
    // grades and statistics must be bit-for-bit equal (only the
    // hierarchy above the cells may legitimately differ).
    let mut legacy = summary_p2p::peerstate::empty_gs();
    let ecfg = saintetiq::engine::EngineConfig::default();
    let mut live: Vec<NodeId> = core.members.clone();
    live.sort_unstable_by_key(|m| m.0);
    for m in live {
        if let Some(st) = peers.get(m.index()).and_then(|s| s.as_ref()) {
            if st.up {
                let tree = wire::decode(&st.data.summary).expect("decodes");
                saintetiq::merge::merge_into(&mut legacy, &tree, &ecfg).expect("same CBK");
            }
        }
    }
    assert_eq!(core.gs.leaf_count(), legacy.leaf_count());
    assert_eq!(core.gs.all_sources(), legacy.all_sources());
    for (k, entry) in legacy.cells() {
        let g = &core.gs.cells()[k];
        assert_eq!(g.content.per_source, entry.content.per_source);
        assert_eq!(g.content.weight, entry.content.weight);
        assert_eq!(g.content.max_grades, entry.content.max_grades);
        for (gs_stats, legacy_stats) in g.stats.iter().zip(&entry.stats) {
            assert_eq!(gs_stats.raw_parts(), legacy_stats.raw_parts());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: any interleaving of the §4.2–§4.3
    /// transitions, closed by a full pull, leaves the incremental GS
    /// observably identical to a from-scratch construction.
    #[test]
    fn incremental_gs_equals_from_scratch_after_any_interleaving(
        seed in 0u64..1_000,
        raw_ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u64>()), 1..24),
    ) {
        let (mut core, mut peers) = setup(seed);
        let mut ledger = MessageLedger::new();
        // α = 2.0: pulls never self-trigger, only explicit Reconcile ops
        // run them — maximizing how much staleness each round absorbs.
        let alpha = 2.0;
        for (kind, peer, op_seed) in raw_ops {
            match decode_op(kind, peer, op_seed) {
                Op::Drift(p, s) => {
                    if peers[p as usize].as_ref().is_some_and(|st| st.up) {
                        regenerate(&mut peers, p, s);
                        core.on_drift(NodeId(p), alpha, &mut peers, &mut ledger)
                            .expect("drift");
                    }
                }
                Op::Leave(p) => {
                    if peers[p as usize].as_ref().is_some_and(|st| st.up) {
                        peers[p as usize].as_mut().expect("slot").up = false;
                        core.on_leave(NodeId(p), alpha, &mut peers, &mut ledger)
                            .expect("leave");
                    }
                }
                Op::Crash(p) => {
                    if let Some(st) = peers[p as usize].as_mut() {
                        st.up = false;
                    }
                }
                Op::Rejoin(p) => {
                    let down = peers[p as usize].as_ref().is_some_and(|st| !st.up);
                    if down && core.members.contains(&NodeId(p)) {
                        peers[p as usize].as_mut().expect("slot").up = true;
                        core.on_join(NodeId(p), alpha, &mut peers, &mut ledger)
                            .expect("rejoin");
                    } else if down {
                        // Dropped from the membership while away: walks
                        // back in like a re-homed orphan.
                        peers[p as usize].as_mut().expect("slot").up = true;
                        core.apply_localsum(NodeId(p));
                    }
                }
                Op::JoinStranger(k) => {
                    core.apply_localsum(NodeId(N + k));
                }
                Op::Reconcile => {
                    core.reconcile(&mut peers, &mut ledger).expect("reconcile");
                    if !core.dissolved {
                        assert_equivalent(&core, &peers);
                    }
                }
                Op::Dissolve => {
                    core.dissolve();
                    prop_assert!(core.acc.is_empty());
                    prop_assert_eq!(core.gs.all_sources().len(), 0);
                }
            }
            core.gs.check_invariants();
        }
        // Close with a full pull: the final state must be equivalent
        // (trivially so after a dissolution — both sides are empty).
        core.reconcile(&mut peers, &mut ledger).expect("final reconcile");
        assert_equivalent(&core, &peers);
        // Merge work never exceeded the membership per round.
        let work = ledger.reconcile_work();
        prop_assert!(work.merged + work.skipped <= (N + STRANGERS) as u64 * core.reconciliations);
    }
}

/// The latency-plane guarantee: a partial ring (token dropped mid-ring
/// by churn) leaves the accumulator in exactly the documented state —
/// visited members refreshed from their snapshots, missed live members
/// retained with their *previous* descriptions, departed members
/// expired — and a follow-up full pull restores oracle equivalence.
#[test]
fn partial_ring_leaves_accumulator_consistent() {
    let (mut core, mut peers) = setup(77);
    let mut ledger = MessageLedger::new();
    let originals: Vec<_> = (0..N)
        .map(|p| peers[p as usize].as_ref().unwrap().data.summary.clone())
        .collect();

    // Four members drift; one of them crashes mid-ring; the token only
    // reaches the first two stale members before being dropped.
    for (p, s) in [(1u32, 500u64), (3, 501), (5, 502), (7, 503)] {
        regenerate(&mut peers, p, s);
        core.cl.set_freshness(NodeId(p), Freshness::NeedsRefresh);
    }
    peers[5].as_mut().unwrap().up = false; // crashes before its hop
    let gathered: Vec<SummarySnapshot> = [1u32, 3]
        .iter()
        .map(|&p| {
            let st = peers[p as usize].as_ref().unwrap();
            SummarySnapshot {
                peer: NodeId(p),
                summary: st.data.summary.clone(),
                match_bits: st.data.match_bits,
            }
        })
        .collect();
    core.reconcile_from_snapshots(&gathered, &mut peers, &mut ledger)
        .expect("partial pull");
    core.gs.check_invariants();

    // Expected accumulator: every live member contributes — visited ones
    // their current summaries, everyone else the summary from enrollment
    // time (member 7 drifted but unvisited: its *old* description stays).
    let mut expected = empty_accumulator();
    for p in 0..N {
        if p == 5 {
            continue; // departed: expired
        }
        let bytes = if p == 1 || p == 3 {
            peers[p as usize].as_ref().unwrap().data.summary.clone()
        } else {
            originals[p as usize].clone()
        };
        expected
            .update_source_encoded(SourceId(p), &bytes)
            .expect("decodes");
    }
    assert_eq!(
        wire::encode(&core.gs),
        wire::encode(&expected.build_merged()),
        "partial pull: visited refreshed, missed retained, departed expired"
    );
    assert_eq!(
        core.cl.freshness(NodeId(7)),
        Some(Freshness::NeedsRefresh),
        "missed stale member re-arms α"
    );
    assert!(!core.acc.contains(SourceId(5)));

    // The follow-up full pull converges on the oracle.
    core.reconcile(&mut peers, &mut ledger).expect("full pull");
    let oracle = core.full_rebuild_oracle(&peers).expect("oracle");
    assert_eq!(wire::encode(&core.gs), wire::encode(&oracle));
    let work = ledger.reconcile_work();
    assert_eq!(
        work.merged, 3,
        "two snapshot merges + the one remaining stale member"
    );
}
