//! Integration tests of SP rebirth with latency-aware re-election
//! (§4.3 completed): when a summary peer departs and its domain
//! dissolves, a replacement SP is elected from the dissolved domain's
//! live hubs, the orphans re-home to it, and the reborn domain is
//! seeded from the retained member descriptions so its first pull is a
//! delta. Covered here: determinism per seed in both delivery modes,
//! the off-by-default escape hatch (no rebirths, monotone domain
//! decay, reports bit-equal to a default-field config), the oracle
//! property (a reborn domain's incremental GS stays byte-identical to
//! the from-scratch rebuild), and long-horizon domain-count
//! stationarity.

use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::kernel::{LookupTarget, MultiDomainSim};
use summary_p2p::metrics::MultiDomainReport;
use summary_p2p::scenario::{figure_rebirth, with_latency, with_sp_churn};

fn base(n: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n, 0.3);
    c.horizon = SimTime::from_hours(8);
    c.query_count = 40;
    c.records_per_peer = 10;
    c.seed = seed;
    c
}

/// SP churn fast enough that every domain sees several departures.
fn churny(n: usize, seed: u64) -> SimConfig {
    with_sp_churn(&base(n, seed), 3600.0)
}

fn run(cfg: SimConfig) -> MultiDomainReport {
    MultiDomainSim::new(cfg, 25, LookupTarget::Total)
        .unwrap()
        .run()
}

#[test]
fn rebirth_keeps_domain_count_stationary_long_horizon() {
    let mut cfg = churny(150, 11);
    cfg.horizon = SimTime::from_hours(16);
    cfg.rebirth = true;
    let on = run(cfg);
    let mut off_cfg = churny(150, 11);
    off_cfg.horizon = SimTime::from_hours(16);
    let off = run(off_cfg);

    assert!(on.rebirths > 0, "departures must trigger re-elections");
    let initial = on.initial_domains as f64;
    assert!(
        (on.mean_live_domains() - initial).abs() <= 0.1 * initial,
        "time-weighted mean live domains {} must stay within ±10% of {}",
        on.mean_live_domains(),
        initial
    );
    assert!(
        off.n_domains < off.initial_domains,
        "terminal dissolutions decay the population ({} of {})",
        off.n_domains,
        off.initial_domains
    );
    assert!(
        on.mean_recall > off.mean_recall,
        "a stationary domain population must answer better ({} vs {})",
        on.mean_recall,
        off.mean_recall
    );
}

#[test]
fn rebirth_disabled_stays_inert_and_monotone() {
    // The escape hatch: with the knob off the kernel schedules no
    // election/takeover events, counts no rebirths, and the
    // domain-count trajectory decays monotonically — and a run whose
    // config merely *spells out* the default is bit-equal to one that
    // never mentions the knob.
    for latency in [false, true] {
        let mut cfg = churny(120, 5);
        if latency {
            cfg = with_latency(&cfg, SimTime::from_millis(50));
        }
        let default_cfg = cfg;
        cfg.rebirth = false;
        let explicit = run(cfg);
        let implicit = run(default_cfg);
        assert_eq!(explicit.rebirths, 0);
        assert_eq!(explicit.queries, implicit.queries);
        assert_eq!(explicit.push_messages, implicit.push_messages);
        assert_eq!(explicit.reconciliations, implicit.reconciliations);
        assert_eq!(explicit.n_domains, implicit.n_domains);
        assert!(
            (explicit.mean_recall - implicit.mean_recall).abs() < 1e-15,
            "latency={latency}"
        );
        let counts: Vec<usize> = explicit
            .domain_count_trajectory
            .iter()
            .map(|&(_, n)| n)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[1] <= w[0]),
            "latency={latency}: without rebirth the live-domain count \
             never recovers: {counts:?}"
        );
    }
}

#[test]
fn rebirth_is_deterministic_per_seed_in_both_modes() {
    for latency in [false, true] {
        let make = || {
            let mut cfg = churny(130, 21);
            cfg.rebirth = true;
            if latency {
                cfg = with_latency(&cfg, SimTime::from_millis(50));
            }
            run(cfg)
        };
        let a = make();
        let b = make();
        assert!(a.rebirths > 0, "latency={latency}: rebirths happened");
        assert_eq!(a.rebirths, b.rebirths, "latency={latency}");
        assert_eq!(a.queries, b.queries, "latency={latency}");
        assert_eq!(a.push_messages, b.push_messages, "latency={latency}");
        assert_eq!(a.reconciliations, b.reconciliations, "latency={latency}");
        assert_eq!(
            a.domain_count_trajectory, b.domain_count_trajectory,
            "latency={latency}"
        );
        assert!(
            (a.mean_recall - b.mean_recall).abs() < 1e-15,
            "latency={latency}"
        );
        // A different seed takes a different trajectory (the whole
        // point of seeding every stochastic choice).
        let mut other = churny(130, 22);
        other.rebirth = true;
        if latency {
            other = with_latency(&other, SimTime::from_millis(50));
        }
        let c = run(other);
        assert!(
            c.push_messages != a.push_messages || c.rebirths != a.rebirths,
            "latency={latency}: seeds must decorrelate"
        );
    }
}

#[test]
fn reborn_domains_incremental_gs_matches_full_rebuild_oracle() {
    // The seeding property: a reborn domain's GS — built from retained
    // descriptions plus delta pulls only — must agree byte-for-byte
    // with a from-scratch rebuild over every live member's current
    // summary, at any probe point after a completed reconciliation
    // round. Instantaneous mode, where no snapshot is ever in flight.
    for seed in [1u64, 7, 42] {
        let mut cfg = churny(140, seed);
        cfg.rebirth = true;
        let mut sim = MultiDomainSim::new(cfg, 25, LookupTarget::Total).unwrap();
        let mut saw_rebirth = false;
        for hours in [2u64, 4, 6, 8] {
            sim.advance_to(SimTime::from_hours(hours));
            saw_rebirth |= sim.rebirths() > 0;
            sim.reconcile_all();
            assert!(
                sim.gs_matches_oracle().unwrap(),
                "seed {seed}: live GS diverged from the oracle at {hours} h \
                 ({} rebirths so far)",
                sim.rebirths()
            );
        }
        assert!(
            saw_rebirth,
            "seed {seed}: the probe run must exercise rebirth"
        );
    }
}

#[test]
fn reborn_domains_keep_answering_queries() {
    let mut cfg = churny(150, 33);
    cfg.rebirth = true;
    let mut sim = MultiDomainSim::new(cfg, 25, LookupTarget::Total).unwrap();
    sim.advance_to(SimTime::from_hours(7));
    assert!(sim.rebirths() > 0, "the run must exercise rebirth");
    assert!(sim.live_domains() > 0);
    sim.reconcile_all();
    let origins = sim.live_origins();
    assert!(!origins.is_empty());
    let out = sim.route_now(origins[0], 0, LookupTarget::Total);
    assert!(
        out.results > 0,
        "a network of reborn domains still localizes matches: {out:?}"
    );
}

#[test]
fn failed_sp_rebirth_waits_for_detection_on_the_message_plane() {
    // With every departure silent, latency-mode elections start only
    // after the failure-detection timeout — the run still converges to
    // a stationary population, just with longer dissolution windows.
    let mut cfg = churny(120, 9);
    cfg.failure_fraction = 1.0;
    cfg.rebirth = true;
    let cfg = with_latency(&cfg, SimTime::from_millis(50));
    let report = run(cfg);
    assert!(report.rebirths > 0, "failed SPs are replaced too");
    // The final snapshot can catch domains mid-detection-window (an
    // election scheduled past the horizon never fires), so the honest
    // stationarity metric here is the time-weighted mean.
    assert!(
        report.mean_live_domains() >= 0.7 * report.initial_domains as f64,
        "the population recovers despite silent failures (mean {} of {})",
        report.mean_live_domains(),
        report.initial_domains
    );
}

#[test]
fn rebirth_sweep_emits_consistent_rows() {
    let mut base = base(120, 3);
    base.horizon = SimTime::from_hours(6);
    let rows = figure_rebirth(&base, 3600.0, 25, LookupTarget::Total).unwrap();
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert_eq!(r.initial_domains, r.report.initial_domains);
        assert!(r.min_live_domains <= r.initial_domains);
        assert!((0.0..=1.0 + 1e-12).contains(&r.mean_recall));
        assert!(r.mean_live_domains <= r.initial_domains as f64 + 1e-9);
    }
    assert!(rows[1].rebirths > 0);
}
