//! Integration tests of the maintenance control plane (`core::control`):
//! bounded per-domain adaptive α, deterministic runs in both delivery
//! modes, byte-identical fixed-policy behavior, and the Zipf workload
//! knob that rides along.

use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::control::ControlPolicy;
use summary_p2p::domain::DomainSim;
use summary_p2p::kernel::{LookupTarget, MultiDomainSim};
use summary_p2p::metrics::MultiDomainReport;
use summary_p2p::scenario::{with_heterogeneous_drift, with_latency};

fn base(n: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n, 0.3);
    c.horizon = SimTime::from_hours(6);
    c.query_count = 40;
    c.records_per_peer = 10;
    c.seed = seed;
    c
}

fn adaptive(target: f64, alpha_min: f64, alpha_max: f64, gain: f64) -> ControlPolicy {
    ControlPolicy::Adaptive {
        target_staleness: target,
        alpha_min,
        alpha_max,
        gain,
        epoch_s: 600.0,
    }
}

fn run_multi(cfg: SimConfig) -> MultiDomainReport {
    MultiDomainSim::new(cfg, 25, LookupTarget::Total)
        .unwrap()
        .run()
}

/// Every α the controller ever held — trajectory samples and final
/// values — must sit inside the policy's clamp.
fn assert_bounded(report: &MultiDomainReport, alpha_min: f64, alpha_max: f64) {
    assert!(
        !report.alpha_trajectories.is_empty(),
        "trajectories recorded"
    );
    for traj in &report.alpha_trajectories {
        for &(_, a) in traj.iter().skip(1) {
            assert!(
                (alpha_min..=alpha_max).contains(&a),
                "alpha {a} escaped [{alpha_min}, {alpha_max}]"
            );
        }
    }
    for &a in &report.final_alphas {
        assert!((alpha_min..=alpha_max).contains(&a));
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Whatever the feedback does — any seed, gain, target or drift
        /// spread — adaptive α never leaves `[alpha_min, alpha_max]`.
        #[test]
        fn adaptive_alpha_stays_within_bounds(
            seed in 0u64..1000,
            gain in 0.1f64..2.0,
            target in 0.05f64..0.5,
            spread in 1.0f64..8.0,
        ) {
            let mut cfg = with_heterogeneous_drift(&base(80, seed), spread);
            cfg.control = Some(adaptive(target, 0.1, 0.8, gain));
            let report = run_multi(cfg);
            assert_bounded(&report, 0.1, 0.8);
        }
    }
}

#[test]
fn adaptive_runs_are_deterministic_in_both_delivery_modes() {
    let mut instant = with_heterogeneous_drift(&base(120, 9), 4.0);
    instant.control = Some(adaptive(0.2, 0.05, 0.9, 0.6));
    let a = run_multi(instant);
    let b = run_multi(instant);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.push_messages, b.push_messages);
    assert_eq!(a.reconciliations, b.reconciliations);
    assert_eq!(a.final_alphas, b.final_alphas);
    assert_eq!(a.alpha_trajectories, b.alpha_trajectories);
    assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    assert!((a.mean_stale_answer_fraction - b.mean_stale_answer_fraction).abs() < 1e-12);

    let latency = with_latency(&instant, SimTime::from_millis(50));
    let c = run_multi(latency);
    let d = run_multi(latency);
    assert_eq!(c.queries, d.queries);
    assert_eq!(c.reconciliations, d.reconciliations);
    assert_eq!(c.final_alphas, d.final_alphas);
    assert_eq!(c.alpha_trajectories, d.alpha_trajectories);
    assert!((c.mean_time_to_answer_s - d.mean_time_to_answer_s).abs() < 1e-12);
    assert_bounded(&c, 0.05, 0.9);
}

/// `ControlPolicy::Fixed` — implicit (the default `control: None`) or
/// explicit — must reproduce the seed pipelines byte-for-byte: same
/// messages, same wire bytes, same staleness, same recall.
#[test]
fn fixed_policy_reproduces_the_seed_figures_byte_identically() {
    // Multi-domain, instantaneous mode.
    let implicit = base(150, 4);
    let mut explicit = implicit;
    explicit.control = Some(ControlPolicy::Fixed(implicit.alpha));
    let a = run_multi(implicit);
    let b = run_multi(explicit);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.push_messages, b.push_messages);
    assert_eq!(a.reconciliation_messages, b.reconciliation_messages);
    assert_eq!(a.reconciliations, b.reconciliations);
    assert_eq!(a.reconcile_delta_bytes, b.reconcile_delta_bytes);
    assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    assert!((a.mean_stale_answers - b.mean_stale_answers).abs() < 1e-12);
    assert!((a.mean_messages - b.mean_messages).abs() < 1e-12);
    // The fixed "trajectory" is the initial point, never a tick.
    for traj in &b.alpha_trajectories {
        assert_eq!(traj.len(), 1);
        assert_eq!(traj[0], (0.0, implicit.alpha));
    }
    assert!(b.final_alphas.iter().all(|&x| x == implicit.alpha));

    // Single-domain figure pipeline, both delivery modes.
    for lat in [false, true] {
        let mut implicit = base(40, 5);
        if lat {
            implicit = with_latency(&implicit, SimTime::from_millis(50));
        }
        let mut explicit = implicit;
        explicit.control = Some(ControlPolicy::Fixed(implicit.alpha));
        let a = DomainSim::new(implicit).unwrap().run();
        let b = DomainSim::new(explicit).unwrap().run();
        assert_eq!(a.push_messages, b.push_messages);
        assert_eq!(a.reconciliation_messages, b.reconciliation_messages);
        assert_eq!(a.reconciliation_bytes, b.reconciliation_bytes);
        assert_eq!(a.reconciliations, b.reconciliations);
        assert_eq!(a.gs_bytes, b.gs_bytes);
        assert!((a.worst_stale_fraction() - b.worst_stale_fraction()).abs() < 1e-12);
        assert_eq!(b.final_alpha, implicit.alpha);
    }
}

/// On the heterogeneous-drift axis the controller actually finds
/// something: per-domain thresholds spread out instead of staying at
/// one global value, and fast-drifting domains do not end *above*
/// slow-drifting ones.
#[test]
fn adaptive_alpha_spreads_across_heterogeneous_domains() {
    let mut cfg = with_heterogeneous_drift(&base(200, 11), 6.0);
    cfg.query_count = 80;
    cfg.control = Some(adaptive(0.2, 0.05, 0.9, 0.6));
    let report = run_multi(cfg);
    assert!(report.final_alphas.len() >= 4, "several domains survived");
    let lo = report
        .final_alphas
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = report
        .final_alphas
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        hi - lo > 1e-6,
        "per-domain alphas converged to distinct values: {:?}",
        report.final_alphas
    );
    assert_bounded(&report, 0.05, 0.9);
    // Trajectories carry one sample per epoch beyond the initial point.
    assert!(report.alpha_trajectories.iter().any(|t| t.len() > 3));
}

/// The Zipf workload knob: the skewed template draw produces a valid,
/// deterministic run (the draw shares the kernel's seeded RNG stream,
/// so the whole run — not just the query mix — is a different but
/// reproducible trajectory than round-robin's).
#[test]
fn zipf_workload_runs_deterministically() {
    let mut cfg = base(120, 13);
    cfg.zipf_exponent = Some(1.2);
    cfg.validate().unwrap();
    let a = run_multi(cfg);
    let b = run_multi(cfg);
    assert!(a.queries > 0);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.push_messages, b.push_messages);
    assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    assert!((a.mean_messages - b.mean_messages).abs() < 1e-12);
}
