//! Integration tests of multi-domain construction (§4.1) and
//! summary-peer dynamicity (§4.3) over generated power-law topologies.

use p2psim::network::{MessageClass, Network};
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use summary_p2p::construction::{construct_domains, elect_superpeers, handle_sp_departure};

fn network(n: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = TopologyConfig {
        nodes: n,
        m: 2,
        ..Default::default()
    };
    Network::new(Graph::barabasi_albert(&cfg, &mut rng))
}

#[test]
fn construction_covers_the_network() {
    let mut net = network(500, 1);
    let sps = elect_superpeers(&net, 10);
    let domains = construct_domains(&mut net, &sps, 2);
    let assignable = net.len() - sps.len();
    assert!(
        domains.assigned_count() as f64 > 0.95 * assignable as f64,
        "coverage {}/{assignable}",
        domains.assigned_count()
    );
    // Every partner's SP is one of the elected superpeers.
    for (i, a) in domains.assignment.iter().enumerate() {
        if let Some(sp) = a {
            assert!(sps.contains(sp), "peer {i} assigned to non-SP {sp:?}");
        }
    }
}

#[test]
fn broadcast_ttl_bounds_direct_assignments() {
    // With TTL 1, only direct neighbors of SPs join via broadcast; the
    // selective-walk fallback still catches the rest.
    let mut ttl1 = network(300, 2);
    let sps1 = elect_superpeers(&ttl1, 5);
    let d1 = construct_domains(&mut ttl1, &sps1, 1);
    let broadcast_hits_ttl1 = d1
        .distance
        .iter()
        .filter(|&&d| d != u64::MAX && d != u64::MAX - 1)
        .count();

    let mut ttl3 = network(300, 2);
    let sps3 = elect_superpeers(&ttl3, 5);
    let d3 = construct_domains(&mut ttl3, &sps3, 3);
    let broadcast_hits_ttl3 = d3
        .distance
        .iter()
        .filter(|&&d| d != u64::MAX && d != u64::MAX - 1)
        .count();

    assert!(
        broadcast_hits_ttl3 > broadcast_hits_ttl1,
        "larger TTL reaches more peers directly: {broadcast_hits_ttl3} vs {broadcast_hits_ttl1}"
    );
}

#[test]
fn construction_message_cost_scales_with_ttl() {
    let mut a = network(400, 3);
    let sps_a = elect_superpeers(&a, 8);
    construct_domains(&mut a, &sps_a, 1);
    let cost_ttl1 = a.sent(MessageClass::Construction);

    let mut b = network(400, 3);
    let sps_b = elect_superpeers(&b, 8);
    construct_domains(&mut b, &sps_b, 3);
    let cost_ttl3 = b.sent(MessageClass::Construction);

    assert!(cost_ttl3 > cost_ttl1, "{cost_ttl3} vs {cost_ttl1}");
}

#[test]
fn domains_partition_the_assigned_peers() {
    let mut net = network(350, 4);
    let sps = elect_superpeers(&net, 7);
    let domains = construct_domains(&mut net, &sps, 2);
    let mut seen = vec![false; net.len()];
    for &sp in &sps {
        for p in domains.members(sp) {
            assert!(!seen[p.index()], "peer {p:?} in two domains");
            seen[p.index()] = true;
        }
    }
}

#[test]
fn sequential_sp_departures_drain_gracefully() {
    let mut net = network(300, 5);
    let sps = elect_superpeers(&net, 6);
    let mut domains = construct_domains(&mut net, &sps, 2);

    // Take down SPs one by one; partners keep re-homing to survivors.
    for &sp in sps.iter().take(4) {
        handle_sp_departure(&mut net, &mut domains, sp, true);
        // Remaining assignments only point at surviving SPs.
        for a in domains.assignment.iter().flatten() {
            assert!(domains.superpeers.contains(a));
            assert!(net.is_up(*a));
        }
    }
    assert_eq!(domains.superpeers.len(), 2);
    assert!(domains.assigned_count() > 0, "survivors still hold domains");
}

#[test]
fn failed_vs_graceful_departure_cost_profile() {
    let mut g = network(250, 6);
    let sps_g = elect_superpeers(&g, 5);
    let mut dom_g = construct_domains(&mut g, &sps_g, 2);
    g.reset_counters();
    handle_sp_departure(&mut g, &mut dom_g, sps_g[0], true);
    let release_msgs = g.sent(MessageClass::Control);

    let mut f = network(250, 6);
    let sps_f = elect_superpeers(&f, 5);
    let mut dom_f = construct_domains(&mut f, &sps_f, 2);
    f.reset_counters();
    handle_sp_departure(&mut f, &mut dom_f, sps_f[0], false);
    let probe_msgs = f.sent(MessageClass::Push);

    // Same partner count on both sides of the comparison.
    assert_eq!(
        release_msgs, probe_msgs,
        "one notification per partner either way"
    );
    assert_eq!(f.sent(MessageClass::Control), 0);
}
