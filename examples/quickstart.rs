//! Quickstart: the paper's running example, end to end.
//!
//! Builds the medical CBK (Figure 2), summarizes the Patient relation of
//! Table 1 into a SaintEtiQ hierarchy (Table 2 / Figure 3), then runs
//! the §5.1 query two ways: *approximate answering* entirely in the
//! summary domain, and *exact evaluation* for comparison.
//!
//! Run with: `cargo run --example quickstart`

use fuzzy::BackgroundKnowledge;
use relation::query::SelectQuery;
use relation::schema::Schema;
use relation::table::Table;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::query::approx::approximate_answer;
use saintetiq::query::proposition::reformulate;

fn main() {
    // --- Background knowledge (Figure 2) -------------------------------
    let bk = BackgroundKnowledge::medical_cbk();
    let age = bk.attribute("age").expect("age vocabulary");
    println!("Fuzzy mapping of age 20 (Figure 2):");
    for (label, grade) in age.fuzzify_numeric(20.0) {
        println!("  {:.1}/{}", grade, age.label_name(label).unwrap());
    }

    // --- Raw data (Table 1) --------------------------------------------
    let table = Table::patient_table1();
    println!("\nPatient relation (Table 1): {} tuples", table.len());
    for t in table.tuples() {
        let row: Vec<String> = t.values.iter().map(|v| v.to_string()).collect();
        println!("  t{}: {}", t.id.0, row.join(", "));
    }

    // --- Summarization (Table 2 / Figure 3) -----------------------------
    let mut engine = SaintEtiQEngine::new(
        bk.clone(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(0),
    )
    .expect("the CBK binds to the Patient schema");
    engine.summarize_table(&table);
    let tree = engine.tree();
    println!(
        "\nSummary hierarchy: {} cells, {} nodes, depth {} (Figure 3)",
        tree.leaf_count(),
        tree.live_node_count(),
        tree.depth()
    );
    let mapper = engine.mapper();
    for (key, entry) in tree.cells() {
        println!(
            "  cell {} -> count {:.1}",
            mapper.describe(key),
            entry.content.weight
        );
    }

    // --- Query reformulation (§5.1) -------------------------------------
    let query = SelectQuery::paper_example();
    println!("\nQuery Q: {query}");
    let sq = reformulate(&query, &bk).expect("query is routable");
    println!("Proposition P: {}", sq.render(&bk));

    // --- Approximate answering (§5.2.2): no raw records touched ---------
    let answers = approximate_answer(engine.tree(), &sq);
    println!("\nApproximate answer (from summaries only):");
    for a in &answers {
        println!("  {}", a.render(&bk));
    }

    // --- Exact answering, for comparison --------------------------------
    let exact = query.evaluate_projected(&table).expect("valid query");
    println!("\nExact answer (raw records): {} tuples", exact.len());
    for row in &exact {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  age = {}", cells.join(", "));
    }

    // The headline sentence of §5.2.2.
    println!(
        "\n=> all female patients diagnosed with anorexia and having an \
         underweight or normal BMI are young"
    );
}
