//! Semantic routing over a full power-law network: domain construction
//! (§4.1), summary-peer dynamicity (§4.3) and the §6.2.3 baseline
//! comparison on one concrete query.
//!
//! Run with: `cargo run --release --example semantic_routing`

use p2psim::network::{MessageClass, Network, NodeId};
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use summary_p2p::baselines;
use summary_p2p::construction::{construct_domains, elect_superpeers, handle_sp_departure};
use summary_p2p::costmodel;

fn main() {
    let n = 600;
    let mut rng = StdRng::seed_from_u64(11);
    let topo = TopologyConfig {
        nodes: n,
        m: 2,
        ..Default::default()
    };
    let mut net = Network::new(Graph::barabasi_albert(&topo, &mut rng));
    println!(
        "Power-law network: {} peers, average degree {:.2}, connected: {}",
        n,
        net.graph().average_degree(),
        net.graph().is_connected()
    );

    // --- Domain construction (§4.1) -------------------------------------
    let sps = elect_superpeers(&net, 8);
    println!(
        "\nElected {} summary peers (highest degree: {})",
        sps.len(),
        net.graph().degree(sps[0])
    );
    let mut domains = construct_domains(&mut net, &sps, 2);
    println!(
        "Construction: {} of {} peers joined a domain with {} messages",
        domains.assigned_count(),
        n - sps.len(),
        net.sent(MessageClass::Construction)
    );
    for &sp in &sps {
        println!("  SP {:>4}: {} partners", sp.0, domains.members(sp).len());
    }

    // --- Summary-peer dynamicity (§4.3) ----------------------------------
    let departing = sps[2];
    let orphans = domains.members(departing).len();
    net.reset_counters();
    let rehomed = handle_sp_departure(&mut net, &mut domains, departing, true);
    println!(
        "\nSP {} leaves gracefully: {} release msgs, {}/{} partners re-homed \
         via selective walks ({} find msgs)",
        departing.0,
        net.sent(MessageClass::Control),
        rehomed,
        orphans,
        net.sent(MessageClass::Construction)
    );

    // --- Query-cost comparison on this network (§6.2.3) -----------------
    // 10% of peers hold matching data.
    let mut matching = vec![false; n];
    let mut chosen = 0;
    while chosen < n / 10 {
        let i = rng.gen_range(0..n);
        if !matching[i] {
            matching[i] = true;
            chosen += 1;
        }
    }
    let origin = NodeId(rng.gen_range(0..n as u32));
    let flood = baselines::flood_query(&net, origin, 3, |p| matching[p.index()]);
    let central = baselines::centralized_query(&net, |p| matching[p.index()]);
    let sq = costmodel::figure7_sq_cost(n, 0.11, 3.5);

    println!("\nOne query, three algorithms ({} matching peers):", chosen);
    println!(
        "  pure flooding (TTL 3) : {:>6} msgs, recall {:.0}%",
        flood.messages,
        100.0 * flood.recall()
    );
    println!(
        "  summary querying (SQ) : {:>6.0} msgs, recall 100% (visits 10 domains)",
        sq
    );
    println!(
        "  centralized index     : {:>6} msgs, recall 100% (lower bound)",
        central.messages
    );
    println!(
        "\n=> SQ delivers full recall at {:.1}x the centralized cost; flooding \
         finds only {:.0}% of the answers at TTL 3",
        sq / central.messages as f64,
        100.0 * flood.recall()
    );
}
