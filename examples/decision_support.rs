//! Decision support: approximate answers with numeric statistics.
//!
//! §1 motivates summaries with decision-support users who "prefer an
//! approximate but fast answer, instead of waiting a long time for an
//! exact one". This example loads a CSV dataset (as an integrator
//! would), summarizes it, and answers cohort questions entirely from the
//! summary — including the §3.2.1 statistical measures (count, min, max,
//! mean, standard deviation) that each summary stores.
//!
//! Run with: `cargo run --release --example decision_support`

use fuzzy::BackgroundKnowledge;
use relation::csv::{read_csv, write_csv};
use relation::predicate::Predicate;
use relation::query::SelectQuery;
use relation::schema::Schema;
use relation::table::Table;
use relation::value::Value;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::query::approx::approximate_answer_with_stats;
use saintetiq::query::proposition::reformulate;

/// Builds a ward's dataset, exported to CSV the way a real deployment
/// would receive it.
fn ward_csv() -> Vec<u8> {
    let mut rng_state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        // xorshift*: deterministic tiny generator for the demo data.
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        rng_state = rng_state.wrapping_mul(0x2545F4914F6CDD1D);
        (rng_state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut table = Table::new(Schema::patient());
    // A malaria outbreak among children...
    for _ in 0..40 {
        let age = 4.0 + next() * 12.0;
        table
            .insert(vec![
                Value::Int(age as i64),
                Value::text(if next() > 0.5 { "female" } else { "male" }),
                Value::Float(15.0 + next() * 8.0),
                Value::text("malaria"),
            ])
            .expect("valid row");
    }
    // ...two elderly cases...
    for age in [78i64, 84] {
        table
            .insert(vec![
                Value::Int(age),
                Value::text("male"),
                Value::Float(22.0),
                Value::text("malaria"),
            ])
            .expect("valid row");
    }
    // ...and a large unrelated background.
    for _ in 0..160 {
        let age = 20.0 + next() * 60.0;
        table
            .insert(vec![
                Value::Int(age as i64),
                Value::text(if next() > 0.5 { "female" } else { "male" }),
                Value::Float(19.0 + next() * 12.0),
                Value::text(if next() > 0.5 {
                    "hypertension"
                } else {
                    "diabetes"
                }),
            ])
            .expect("valid row");
    }
    let mut buf = Vec::new();
    write_csv(&table, &mut buf).expect("in-memory write");
    buf
}

fn main() {
    // 1. Load the dataset from CSV, as an integrator would.
    let csv = ward_csv();
    let table = read_csv(&csv[..], Schema::patient()).expect("well-formed CSV");
    println!(
        "Loaded {} patients from CSV ({} bytes)",
        table.len(),
        csv.len()
    );

    // 2. Summarize once; the summary is all we query from here on.
    let bk = BackgroundKnowledge::medical_cbk();
    let mut engine = SaintEtiQEngine::new(
        bk.clone(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(0),
    )
    .expect("CBK binds");
    engine.summarize_table(&table);
    println!(
        "Summary: {} cells / {} nodes for {} records (compression is the point)\n",
        engine.tree().leaf_count(),
        engine.tree().live_node_count(),
        table.len()
    );

    // 3. The §1 question: "age of malaria patients" — answered with
    //    descriptors AND statistics, no record access.
    let query = SelectQuery::new(
        vec!["age".into()],
        vec![Predicate::eq("disease", "malaria")],
    );
    let sq = reformulate(&query, &bk).expect("routable");
    println!("Q: {query}\n");
    let age_attr = bk.attribute_index("age").expect("age in CBK");
    for (answer, stats) in approximate_answer_with_stats(engine.tree(), &sq) {
        println!("  {}", answer.render(&bk));
        for cs in &stats {
            if cs.attr == age_attr && cs.stats.count() > 0.0 {
                println!(
                    "    age stats: n={:.1}, range [{:.0}, {:.0}], mean {:.1} ± {:.1}",
                    cs.stats.count(),
                    cs.stats.min().unwrap(),
                    cs.stats.max().unwrap(),
                    cs.stats.mean().unwrap(),
                    cs.stats.std_dev().unwrap()
                );
            }
        }
    }

    // 4. The headline reading: the answer descriptors name the cohorts
    //    ({young, old}) and the statistics reveal the skew (mean ≈ 12,
    //    max 84). That is the paper's §1 sentence — "dead Malaria
    //    patients are typically children and old" — computed without
    //    reading a single record back.
    let answers = approximate_answer_with_stats(engine.tree(), &sq);
    let young = bk
        .attribute_at(age_attr)
        .unwrap()
        .label_id("young")
        .unwrap();
    let old = bk.attribute_at(age_attr).unwrap().label_id("old").unwrap();
    let covers = |label| {
        answers.iter().any(|(a, _)| {
            a.answer
                .iter()
                .any(|(attr, set)| *attr == age_attr && set.contains(label))
        })
    };
    assert!(
        covers(young) && covers(old),
        "both cohorts surface in the answer"
    );
    println!(
        "\n=> malaria patients are 'children and old': the descriptor answer \
         names both cohorts, and the statistics (mean ~12, max 84) show the \
         young cohort dominates — the paper's §1 reading, no records read"
    );
}
