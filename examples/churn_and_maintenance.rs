//! Churn and summary maintenance: §4.2–§4.3 in action.
//!
//! Runs the event-driven domain simulation with the paper's Table 3
//! parameters at a small scale: peers drift (push messages), leave,
//! fail silently and rejoin; the summary peer reconciles whenever the
//! cooperation list crosses the freshness threshold α. Prints the
//! traffic breakdown and the query-accuracy consequences for two values
//! of α — the trade-off at the heart of §6.1.
//!
//! Run with: `cargo run --release --example churn_and_maintenance`

use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::domain::DomainSim;
use summary_p2p::routing::RoutingPolicy;

fn run_with_alpha(alpha: f64) {
    let mut cfg = SimConfig::paper_defaults(60, alpha);
    cfg.horizon = SimTime::from_hours(8);
    cfg.query_count = 60;
    cfg.records_per_peer = 16;
    cfg.seed = 7;

    let report = DomainSim::new(cfg).expect("valid config").run();
    println!("alpha = {alpha}");
    println!("  reconciliation rounds : {}", report.reconciliations);
    println!("  push messages         : {}", report.push_messages);
    println!(
        "  reconciliation msgs   : {}",
        report.reconciliation_messages
    );
    println!("  construction msgs     : {}", report.construction_messages);
    println!(
        "  update msgs/node/s    : {:.6}   (eq. 1's measured counterpart)",
        report.update_messages_per_node_s()
    );
    println!(
        "  stale answers (worst) : {:.1}%  of the domain",
        100.0 * report.worst_stale_fraction()
    );
    println!(
        "  recall / precision    : {:.2} / {:.2}",
        report.mean_recall(),
        report.mean_precision()
    );
    println!(
        "  final GS              : {} cells, {} bytes",
        report.gs_cells, report.gs_bytes
    );
    // §4.3's two alternatives for departed peers' descriptions.
    let live: f64 = report.approx_weight_live.iter().sum();
    let kept: f64 = report.approx_weight_with_departed.iter().sum();
    println!(
        "  approx answer mass    : {live:.1} (departed expired, the paper's choice) \
         vs {kept:.1} (departed kept)"
    );
    println!();
}

fn main() {
    println!("Domain of 60 peers, 8 simulated hours, Table 3 churn\n");
    println!("== lax maintenance ==");
    run_with_alpha(0.8);
    println!("== tight maintenance ==");
    run_with_alpha(0.2);

    // The §6.1.2 policy trade-off, at fixed alpha.
    println!("== routing policies at alpha = 0.5 ==");
    for (name, policy) in [
        ("visit all of P_Q        ", RoutingPolicy::All),
        ("fresh only (precision)  ", RoutingPolicy::FreshOnly),
        ("extended (recall)       ", RoutingPolicy::Extended),
    ] {
        let mut cfg = SimConfig::paper_defaults(60, 0.5);
        cfg.horizon = SimTime::from_hours(8);
        cfg.query_count = 60;
        cfg.records_per_peer = 16;
        cfg.seed = 7;
        cfg.policy = policy;
        let report = DomainSim::new(cfg).expect("valid config").run();
        println!(
            "  {name}: recall {:.2}, precision {:.2}, msgs/query {:.1}",
            report.mean_recall(),
            report.mean_precision(),
            (report.query_messages as f64 / report.queries.max(1) as f64)
        );
    }
    println!("\n=> lower alpha buys accuracy with a modest traffic increase (Figure 6)");
}
