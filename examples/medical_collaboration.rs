//! Medical collaboration: the paper's motivating scenario (§1).
//!
//! Several hospitals share patient databases in a superpeer domain. Each
//! hospital summarizes its own data locally (the raw records never leave
//! the site); the summary peer merges the local summaries into a global
//! summary that answers a doctor's query two ways:
//!
//! 1. **peer localization** — which hospitals hold relevant patients;
//! 2. **approximate answering** — "age of dead-Malaria-like cohorts"
//!    style answers straight from descriptors, without any record access.
//!
//! Run with: `cargo run --example medical_collaboration`

use fuzzy::BackgroundKnowledge;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relation::generator::{matching_patient, random_patient, MatchTarget, PatientDistributions};
use relation::predicate::Predicate;
use relation::query::SelectQuery;
use relation::schema::Schema;
use relation::table::Table;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::hierarchy::SummaryTree;
use saintetiq::merge::merge_into;
use saintetiq::query::approx::approximate_answer;
use saintetiq::query::proposition::reformulate;
use saintetiq::query::relevant_sources;
use saintetiq::wire;

const HOSPITALS: [&str; 5] = [
    "CHU Nantes",
    "Hotel-Dieu",
    "St-Jacques",
    "Laennec",
    "Nord-Clinique",
];

fn hospital_table(rng: &mut StdRng, idx: usize) -> Table {
    let dist = PatientDistributions::default();
    let mut t = Table::new(Schema::patient());
    // Hospitals 0 and 3 run malaria wards: guaranteed young malaria
    // patients there, none elsewhere.
    let malaria_ward = idx == 0 || idx == 3;
    if malaria_ward {
        let target = MatchTarget {
            disease: Some("malaria".into()),
            age: Some((5.0, 15.0)),
            ..Default::default()
        };
        for _ in 0..4 {
            t.insert(matching_patient(rng, &dist, &target))
                .expect("valid row");
        }
    }
    let bg = PatientDistributions {
        diseases: ["anorexia", "diabetes", "asthma", "hypertension"]
            .iter()
            .map(|d| (d.to_string(), 1.0))
            .collect(),
        ..Default::default()
    };
    for _ in 0..30 {
        t.insert(random_patient(rng, &bg)).expect("valid row");
    }
    t
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2008);
    let bk = BackgroundKnowledge::medical_cbk();

    // Each hospital builds its local summary; only the summary crosses
    // the network (we measure the bytes to make that point).
    println!("Local summarization at {} hospitals:", HOSPITALS.len());
    let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
    let mut tables = Vec::new();
    for (i, name) in HOSPITALS.iter().enumerate() {
        let table = hospital_table(&mut rng, i);
        let mut engine = SaintEtiQEngine::new(
            bk.clone(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(i as u32),
        )
        .expect("CBK binds");
        engine.summarize_table(&table);
        let tree = engine.into_tree();
        let encoded = wire::encode(&tree);
        println!(
            "  {name}: {} patients -> {} cells, localsum = {} bytes",
            table.len(),
            tree.leaf_count(),
            encoded.len()
        );
        merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
        tables.push(table);
    }
    println!(
        "\nGlobal summary at the summary peer: {} cells, {} nodes, {} bytes",
        gs.leaf_count(),
        gs.live_node_count(),
        wire::encoded_size(&gs)
    );

    // The doctor's query: young malaria patients.
    let query = SelectQuery::new(
        vec!["age".into(), "bmi".into()],
        vec![Predicate::eq("disease", "malaria")],
    );
    println!("\nDoctor's query: {query}");
    let sq = reformulate(&query, &bk).expect("routable");
    println!("Routable proposition: {}", sq.render(&bk));

    // 1) Peer localization: which hospitals to contact.
    let sources = relevant_sources(&gs, &sq.proposition);
    println!(
        "\nPeer localization (P_Q): {} hospitals hold relevant data",
        sources.len()
    );
    for s in &sources {
        println!("  -> {}", HOSPITALS[s.0 as usize]);
    }

    // 2) Approximate answer, straight from the global summary.
    println!("\nApproximate answer (no record leaves any hospital):");
    for a in approximate_answer(&gs, &sq) {
        println!("  {}", a.render(&bk));
    }

    // Ground truth for comparison: exact evaluation per hospital.
    println!("\nExact evaluation at the localized hospitals:");
    for s in &sources {
        let table = &tables[s.0 as usize];
        let rows = query.evaluate_projected(table).expect("valid query");
        let ages: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
        println!("  {}: ages {}", HOSPITALS[s.0 as usize], ages.join(", "));
    }

    // Verify the semantic index made no mistake (crisp disease => exact).
    for (i, table) in tables.iter().enumerate() {
        let truly = query.matches_any(table).expect("valid query");
        let routed = sources.iter().any(|s| s.0 as usize == i);
        assert_eq!(truly, routed, "routing error at hospital {i}");
    }
    println!("\n=> peer localization agreed exactly with ground truth");
}
